package securexml

// Benchmark harness for every experiment in the paper's evaluation
// section plus the ablations listed in DESIGN.md:
//
//	BenchmarkTable1/...            Table 1 (Q1-Q4 × D1-D4 × 3 approaches)
//	BenchmarkDerive/...            Ablation A: derive cost vs DTD size
//	BenchmarkRewrite/...           Ablation B: rewrite cost vs query/view size
//	BenchmarkSimulate/...          Ablation C: containment-test cost
//	BenchmarkUnfold/...            Ablation D: recursive-view unfolding
//	BenchmarkMaterializeVsRewrite  Ablation E: materialization vs rewriting
//	BenchmarkAnnotate              naive baseline's per-policy deployment cost
//
// cmd/svbench prints the Table 1 measurements in the paper's layout;
// EXPERIMENTS.md records paper-reported vs measured values.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/dtds"
	"repro/internal/naive"
	"repro/internal/optimize"
	"repro/internal/rewrite"
	"repro/internal/safety"
	"repro/internal/secview"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ---------- Table 1 ----------

// benchDataSets are smaller than the svbench defaults so the full grid
// stays fast under go test -bench; relative shape is unchanged.
var benchDataSets = []struct {
	name      string
	maxRepeat int
}{
	{"D1", 200},
	{"D2", 1000},
	{"D3", 3200},
	{"D4", 4800},
}

type table1State struct {
	docs map[string]*xmltree.Document
	// per query: the three prepared forms
	naiveQ, rewriteQ, optimizeQ map[string]xpath.Path
}

var (
	table1Once sync.Once
	table1     table1State
)

func table1Setup(b *testing.B) *table1State {
	b.Helper()
	table1Once.Do(func() {
		spec := dtds.AdexSpec()
		view, err := secview.Derive(spec)
		if err != nil {
			panic(err)
		}
		rw, err := rewrite.ForView(view)
		if err != nil {
			panic(err)
		}
		opt := optimize.New(dtds.Adex())
		table1.docs = make(map[string]*xmltree.Document)
		for i, ds := range benchDataSets {
			doc := dtds.GenerateAdex(int64(i)+1, ds.maxRepeat)
			naive.Annotate(spec, doc)
			table1.docs[ds.name] = doc
		}
		table1.naiveQ = make(map[string]xpath.Path)
		table1.rewriteQ = make(map[string]xpath.Path)
		table1.optimizeQ = make(map[string]xpath.Path)
		for name, q := range dtds.AdexQueries {
			p := xpath.MustParse(q)
			pn, err := naive.RewriteQuery(p)
			if err != nil {
				panic(err)
			}
			pt, err := rw.Rewrite(p)
			if err != nil {
				panic(err)
			}
			table1.naiveQ[name] = pn
			table1.rewriteQ[name] = pt
			table1.optimizeQ[name] = opt.Optimize(pt)
		}
	})
	return &table1
}

func BenchmarkTable1(b *testing.B) {
	st := table1Setup(b)
	for _, qname := range []string{"Q1", "Q2", "Q3", "Q4"} {
		for _, ds := range benchDataSets {
			doc := st.docs[ds.name]
			for _, approach := range []struct {
				name string
				q    xpath.Path
			}{
				{"naive", st.naiveQ[qname]},
				{"rewrite", st.rewriteQ[qname]},
				{"optimize", st.optimizeQ[qname]},
			} {
				b.Run(fmt.Sprintf("%s/%s/%s", qname, ds.name, approach.name), func(b *testing.B) {
					b.ReportMetric(float64(doc.Size()), "docnodes")
					for i := 0; i < b.N; i++ {
						xpath.EvalDoc(approach.q, doc)
					}
				})
			}
		}
	}
}

// BenchmarkTable1Indexed repeats the Table 1 grid under the indexed
// evaluator (the closer analogue of the paper's evaluator [17]): the
// naive/rewrite gap narrows but persists, because the naive query still
// pays an ancestor filter and attribute check per candidate while the
// rewritten query touches only the relevant region.
func BenchmarkTable1Indexed(b *testing.B) {
	st := table1Setup(b)
	indexes := make(map[string]*xpath.Index, len(benchDataSets))
	for _, ds := range benchDataSets {
		indexes[ds.name] = xpath.NewIndex(st.docs[ds.name])
	}
	for _, qname := range []string{"Q1", "Q2", "Q3", "Q4"} {
		for _, ds := range benchDataSets {
			idx := indexes[ds.name]
			for _, approach := range []struct {
				name string
				q    xpath.Path
			}{
				{"naive", st.naiveQ[qname]},
				{"rewrite", st.rewriteQ[qname]},
				{"optimize", st.optimizeQ[qname]},
			} {
				b.Run(fmt.Sprintf("%s/%s/%s", qname, ds.name, approach.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						xpath.EvalIndexed(approach.q, idx)
					}
				})
			}
		}
	}
}

// ---------- Ablation A: derive cost vs DTD size ----------

// layeredDTD builds a DTD with the given number of layers and width:
// each layer-i type is a concatenation of all layer-(i+1) types.
func layeredDTD(layers, width int) *dtd.DTD {
	d := dtd.New("L0x0")
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			name := fmt.Sprintf("L%dx%d", l, w)
			if l == layers-1 {
				d.SetProduction(name, dtd.TextContent())
				continue
			}
			names := make([]string, width)
			for c := 0; c < width; c++ {
				names[c] = fmt.Sprintf("L%dx%d", l+1, c)
			}
			d.SetProduction(name, dtd.SeqContent(names...))
		}
	}
	return d
}

// layeredSpec denies every odd layer, forcing short-cutting everywhere.
func layeredSpec(d *dtd.DTD, layers, width int) *access.Spec {
	s := access.NewSpec(d)
	for l := 0; l+1 < layers; l++ {
		if (l+1)%2 != 1 {
			continue
		}
		for w := 0; w < width; w++ {
			parent := fmt.Sprintf("L%dx%d", l, w)
			for c := 0; c < width; c++ {
				child := fmt.Sprintf("L%dx%d", l+1, c)
				if err := s.Annotate(parent, child, access.Ann{Kind: access.Deny}); err != nil {
					panic(err)
				}
			}
		}
	}
	return s
}

func BenchmarkDerive(b *testing.B) {
	for _, size := range []struct{ layers, width int }{{4, 3}, {6, 4}, {8, 5}, {10, 6}} {
		d := layeredDTD(size.layers, size.width)
		spec := layeredSpec(d, size.layers, size.width)
		b.Run(fmt.Sprintf("types=%d", d.Len()), func(b *testing.B) {
			b.ReportMetric(float64(d.Size()), "dtdsize")
			for i := 0; i < b.N; i++ {
				if _, err := secview.Derive(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- Ablation B: rewrite cost vs query and view size ----------

func BenchmarkRewrite(b *testing.B) {
	for _, size := range []struct{ layers, width int }{{4, 3}, {6, 4}, {8, 5}} {
		d := layeredDTD(size.layers, size.width)
		view, err := secview.Derive(access.NewSpec(d))
		if err != nil {
			b.Fatal(err)
		}
		for _, qsteps := range []int{2, 8, 32} {
			var parts []string
			for i := 0; i < qsteps; i++ {
				parts = append(parts, "*")
			}
			q := "//" + strings.Join(parts, "/")
			p := xpath.MustParse(q)
			b.Run(fmt.Sprintf("view=%d/query=%d", d.Size(), xpath.Size(p)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// Fresh rewriter each round: the DP memo must not amortize
					// across iterations or the measured cost vanishes.
					r, err := rewrite.ForView(view)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := r.Rewrite(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------- Ablation C: containment-test cost ----------

func BenchmarkSimulate(b *testing.B) {
	for _, size := range []struct{ layers, width int }{{4, 3}, {6, 4}, {8, 4}} {
		d := layeredDTD(size.layers, size.width)
		o := optimize.New(d)
		// p1 wildcards simulate p2 labels: the classic Example 5.2 shape.
		steps := size.layers - 1
		wild := "." + strings.Repeat("/*", steps)
		labeled := "."
		for l := 1; l < size.layers; l++ {
			labeled += fmt.Sprintf("/L%dx0", l)
		}
		p1 := xpath.MustParse(wild)
		p2 := xpath.MustParse(labeled)
		b.Run(fmt.Sprintf("dtd=%d", d.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				po := o.Optimize(xpath.Union{Left: p2, Right: p1})
				if xpath.IsEmpty(po) {
					b.Fatal("union optimized to empty")
				}
			}
		})
	}
}

// ---------- Ablation D: recursive-view unfolding ----------

func BenchmarkUnfold(b *testing.B) {
	view, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		b.Fatal(err)
	}
	p := xpath.MustParse("//b")
	for _, height := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("height=%d", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := rewrite.ForViewWithHeight(view, height)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.Rewrite(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- Height sweep: height-free vs unfolding ----------

// BenchmarkHeightSweep measures both recursive-view rewriting
// treatments across document heights: rewrite time, plan node count
// (reported as the plan-nodes metric), and evaluation time over a
// document of each height. The unfold oracle's plans and rewrite times
// grow with height; the height-free Rec-automaton plan is one constant
// plan at every height.
func BenchmarkHeightSweep(b *testing.B) {
	view, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		b.Fatal(err)
	}
	p := xpath.MustParse("//b")
	for _, height := range []int{4, 8, 16, 32} {
		doc := xmlgen.Generate(dtds.Fig7(), xmlgen.Config{
			Seed: int64(height), MinRepeat: 1, MaxRepeat: 2, MaxDepth: height, MaxNodes: 4000,
		})
		b.Run(fmt.Sprintf("h=%d/rewrite/height-free", height), func(b *testing.B) {
			var pt xpath.Path
			for i := 0; i < b.N; i++ {
				r, err := rewrite.ForView(view)
				if err != nil {
					b.Fatal(err)
				}
				if pt, err = r.Rewrite(p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(xpath.Size(pt)), "plan-nodes")
		})
		b.Run(fmt.Sprintf("h=%d/rewrite/unfold", height), func(b *testing.B) {
			var pt xpath.Path
			for i := 0; i < b.N; i++ {
				r, err := rewrite.ForViewWithHeight(view, doc.Height())
				if err != nil {
					b.Fatal(err)
				}
				if pt, err = r.Rewrite(p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(xpath.Size(pt)), "plan-nodes")
		})
		hf, err := rewrite.ForView(view)
		if err != nil {
			b.Fatal(err)
		}
		ptHF, err := hf.Rewrite(p)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := rewrite.ForViewWithHeight(view, doc.Height())
		if err != nil {
			b.Fatal(err)
		}
		ptOr, err := oracle.Rewrite(p)
		if err != nil {
			b.Fatal(err)
		}
		if hfN, orN := len(xpath.EvalDoc(ptHF, doc)), len(xpath.EvalDoc(ptOr, doc)); hfN != orN {
			b.Fatalf("height %d: treatments disagree: height-free %d nodes, unfold %d", height, hfN, orN)
		}
		b.Run(fmt.Sprintf("h=%d/eval/height-free", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xpath.EvalDoc(ptHF, doc)
			}
		})
		b.Run(fmt.Sprintf("h=%d/eval/unfold", height), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xpath.EvalDoc(ptOr, doc)
			}
		})
	}
}

// ---------- Ablation E: materialization vs rewriting ----------

func BenchmarkMaterializeVsRewrite(b *testing.B) {
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		b.Fatal(err)
	}
	view, err := secview.Derive(spec)
	if err != nil {
		b.Fatal(err)
	}
	doc := dtds.GenerateHospital(3, 40)
	p := xpath.MustParse("//patient/name")
	r, err := rewrite.ForView(view)
	if err != nil {
		b.Fatal(err)
	}
	pt, err := r.Rewrite(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("materialize-then-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := secview.Materialize(view, doc)
			if err != nil {
				b.Fatal(err)
			}
			xpath.EvalDoc(p, m.View)
		}
	})
	b.Run("rewrite-then-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xpath.EvalDoc(pt, doc)
		}
	})
}

// ---------- naive baseline's deployment cost ----------

func BenchmarkAnnotate(b *testing.B) {
	spec := dtds.AdexSpec()
	doc := dtds.GenerateAdex(9, 1000)
	b.ReportMetric(float64(doc.Size()), "docnodes")
	for i := 0; i < b.N; i++ {
		naive.Annotate(spec, doc)
	}
}

// ---------- enforcement-model comparison ----------

// BenchmarkEnforcement compares the per-query cost of three enforcement
// models on the same policy and document: the paper's security-view
// rewriting, the run-time filtering of Murata et al. [22] (static safety
// check, then post-filter unsafe queries), and the naive annotate +
// widen baseline of Section 6. Filtering pays a full accessibility
// computation per query; views pay nothing at query time.
func BenchmarkEnforcement(b *testing.B) {
	spec := dtds.AdexSpec()
	doc := dtds.GenerateAdex(77, 1000)
	naive.Annotate(spec, doc)
	view, err := secview.Derive(spec)
	if err != nil {
		b.Fatal(err)
	}
	rw, err := rewrite.ForView(view)
	if err != nil {
		b.Fatal(err)
	}
	analyzer, err := safety.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	p := xpath.MustParse("//buyer-info/*") // unsafe: may reach billing-info
	pt, err := rw.Rewrite(xpath.MustParse("//buyer-info/*"))
	if err != nil {
		b.Fatal(err)
	}
	pn, err := naive.RewriteQuery(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("security-view-rewrite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xpath.EvalDoc(pt, doc)
		}
	})
	b.Run("safety-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analyzer.Enforce(p, doc, safety.Filter); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-annotated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xpath.EvalDoc(pn, doc)
		}
	})
}

// ---------- plan cache: cached vs uncached query serving ----------

// BenchmarkPlanCache measures what the engine's plan cache buys on a
// repeated query: "cold" rebuilds the engine each round (every query
// re-rewrites and re-optimizes), "warm" reuses one engine whose cache
// serves the plan after the first round.
func BenchmarkPlanCache(b *testing.B) {
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		b.Fatal(err)
	}
	doc := dtds.GenerateHospital(21, 8)
	const query = "//patient[wardNo]/name"
	p := xpath.MustParse(query)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := core.New(spec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Query(doc, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e, err := core.New(spec)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := e.Query(doc, p); err != nil {
				b.Fatal(err)
			}
		}
		s := e.Stats()
		if s.PlanCache.Hits == 0 && b.N > 1 {
			b.Fatalf("warm path never hit the plan cache: %+v", s.PlanCache)
		}
		b.ReportMetric(float64(s.PlanCache.Hits), "hits")
	})
	// Rewrite+optimize alone, for scale: this is the work a hit skips.
	b.Run("rewrite-optimize-only", func(b *testing.B) {
		e, err := core.New(spec)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			pt, err := e.Rewrite(p, doc.Height())
			if err != nil {
				b.Fatal(err)
			}
			e.Optimize(pt)
		}
	})
}

// BenchmarkPlanCacheRecursive is the same comparison on a recursive
// view, where a miss additionally pays the per-height unfolding.
func BenchmarkPlanCacheRecursive(b *testing.B) {
	p := xpath.MustParse("//b")
	var build func(d int) *xmltree.Node
	build = func(d int) *xmltree.Node {
		if d == 0 {
			return xmltree.E("a", xmltree.T("b", "leaf"), xmltree.E("c"))
		}
		return xmltree.E("a", xmltree.T("b", "x"), xmltree.E("c", build(d-1)))
	}
	doc := xmltree.NewDocument(build(24))
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := core.New(dtds.Fig7Spec())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Query(doc, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e, err := core.New(dtds.Fig7Spec())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := e.Query(doc, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- parallel evaluation: sequential vs worker pool ----------

// BenchmarkParallelEval compares the sequential evaluator with the
// worker-pool evaluator on union-heavy and descendant-heavy queries
// over documents of increasing size.
func BenchmarkParallelEval(b *testing.B) {
	spec := dtds.AdexSpec()
	view, err := secview.Derive(spec)
	if err != nil {
		b.Fatal(err)
	}
	rw, err := rewrite.ForView(view)
	if err != nil {
		b.Fatal(err)
	}
	opt := optimize.New(dtds.Adex())
	queries := map[string]string{
		"Q1": dtds.AdexQueries["Q1"],
		"Q4": dtds.AdexQueries["Q4"],
	}
	for _, size := range []struct {
		name      string
		maxRepeat int
	}{{"small", 400}, {"large", 3200}} {
		doc := dtds.GenerateAdex(5, size.maxRepeat)
		for qname, q := range queries {
			pt, err := rw.Rewrite(xpath.MustParse(q))
			if err != nil {
				b.Fatal(err)
			}
			po := opt.Optimize(pt)
			b.Run(fmt.Sprintf("%s/%s/sequential", qname, size.name), func(b *testing.B) {
				b.ReportMetric(float64(doc.Size()), "docnodes")
				for i := 0; i < b.N; i++ {
					if _, err := xpath.EvalDocErr(po, doc); err != nil {
						b.Fatal(err)
					}
				}
			})
			for _, workers := range []int{2, 4} {
				b.Run(fmt.Sprintf("%s/%s/parallel-%d", qname, size.name, workers), func(b *testing.B) {
					cfg := xpath.ParallelConfig{Workers: workers}
					for i := 0; i < b.N; i++ {
						if _, err := xpath.EvalDocParallel(po, doc, cfg, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// ---------- generator throughput ----------

func BenchmarkGenerate(b *testing.B) {
	for _, repeat := range []int{100, 400} {
		b.Run(fmt.Sprintf("maxRepeat=%d", repeat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xmlgen.Generate(dtds.Adex(), xmlgen.Config{Seed: int64(i), MaxRepeat: repeat})
			}
		})
	}
}

// ---------- deep-descendant workload: walk vs index vs parallel ----------

// BenchmarkDeepDescendant is the ROADMAP's structural-index target
// workload: //dept//treatment//bill-class queries over a 10k+ node
// hospital document, comparing the tree-walk evaluator, the
// structural-index evaluator, and the worker-pool evaluator. The
// index-build case prices what the serving layer amortizes via its
// per-document index cache.
func BenchmarkDeepDescendant(b *testing.B) {
	doc := dtds.GenerateHospital(1, 48)
	if doc.Size() < 10000 {
		b.Fatalf("document too small: %d nodes", doc.Size())
	}
	idx := xpath.NewIndex(doc)
	queries := []struct{ name, q string }{
		{"dept-treatment-bill", "//dept//treatment//bill"},
		{"deep-text", "//dept//patientInfo//name/text()"},
		{"qual-descend", "//dept[.//trial]//bill"},
	}
	b.ReportMetric(float64(doc.Size()), "docnodes")
	for _, tc := range queries {
		p := xpath.MustParse(tc.q)
		want := len(xpath.EvalDoc(p, doc))
		b.Run(tc.name+"/walk", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := xpath.EvalDocErr(p, doc)
				if err != nil || len(out) != want {
					b.Fatalf("walk: %d nodes, err %v", len(out), err)
				}
			}
		})
		b.Run(tc.name+"/indexed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if out := xpath.EvalIndexed(p, idx); len(out) != want {
					b.Fatalf("indexed: %d nodes, want %d", len(out), want)
				}
			}
		})
		b.Run(tc.name+"/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := xpath.EvalDocParallel(p, doc, xpath.ParallelConfig{}, nil)
				if err != nil || len(out) != want {
					b.Fatalf("parallel: %d nodes, err %v", len(out), err)
				}
			}
		})
	}
	b.Run("index-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xpath.NewIndex(doc)
		}
	})
}
