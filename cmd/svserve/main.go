// Command svserve fronts the security-view query engine with an HTTP
// server: it loads one document and a set of user-class policies, then
// answers rewritten-query requests with per-request deadlines and
// admission control (saturation returns 429 rather than queueing).
//
// Usage:
//
//	svserve -builtin hospital -doc ward.xml
//	svserve -dtd hospital.dtd -class nurse=nurse.ann -doc ward.xml -addr :8344
//
// Endpoints:
//
//	GET /query?class=nurse&param=wardNo=6&q=//patient/name[&timeout=250ms]
//	GET /statsz   — JSON counters: server (requests, latency histogram,
//	                timeouts, rejections) and per-class engine/plan-cache
//	                stats from the layers below
//	GET /metricsz — the same counters plus per-phase latency histograms
//	                in Prometheus text exposition format
//	GET /queryz   — per-fingerprint query statistics (top-K by eval
//	                time, count, total time, or answer-cache miss rate)
//	GET /explainz — one query with fresh per-phase timings, the
//	                intermediate query strings, and its span tree
//	GET /tracez   — recent sampled request traces
//	GET /healthz  — 200 while serving, 503 once drain has begun
//	GET /debug/pprof/* — the runtime profiler
//
// Flags -timeout and -max-timeout bound each request's evaluation
// deadline; -max-inflight caps concurrent evaluations; -parallel,
// -workers, and -threshold tune the worker-pool evaluator handed to
// every derived engine; -indexed (on by default) lets engines answer
// descendant queries over large documents from a cached per-document
// label index, with -index-threshold setting the minimum document
// size; -anscache lets engines answer repeated or provably-contained
// queries from a bounded semantic answer cache (-anscache-cap bounds
// it); -trace-sample/-trace-ring tune request-trace sampling and
// -slow-query the slow-query log threshold. -qstats-cap bounds the
// /queryz fingerprint registry. -eventlog FILE switches the slow-query
// log to a structured JSONL wide-event log (errors and slow queries
// always; -eventlog-sample N additionally samples one request in N),
// size-rotated at -eventlog-max-bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/policy"
	"repro/internal/serve"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// builtinClassNames gives each built-in scenario's single policy a
// class name for /query requests.
var builtinClassNames = map[string]string{
	"hospital": "nurse",
	"adex":     "buyer",
	"fig7":     "user",
}

func main() {
	var (
		addr        = flag.String("addr", ":8344", "listen address")
		dtdPath     = flag.String("dtd", "", "document DTD file (with -class)")
		builtin     = flag.String("builtin", "", "use a built-in scenario: hospital, adex, or fig7")
		docPath     = flag.String("doc", "", "XML document file to serve queries against")
		timeout     = flag.Duration("timeout", serve.DefaultTimeout, "default per-request evaluation deadline")
		maxTimeout  = flag.Duration("max-timeout", serve.DefaultMaxTimeout, "hard cap on per-request deadlines")
		maxInFlight = flag.Int("max-inflight", serve.DefaultMaxInFlight, "maximum concurrently evaluating queries (excess gets 429)")
		parallel    = flag.Bool("parallel", false, "evaluate with the parallel worker-pool evaluator")
		workers     = flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
		threshold   = flag.Int("threshold", 0, "parallel-evaluation size threshold (0 = default)")
		indexed     = flag.Bool("indexed", true, "serve descendant queries over large documents from a cached label index")
		indexMin    = flag.Int("index-threshold", 0, "minimum document size (nodes) for indexed evaluation (0 = default)")
		anscache    = flag.Bool("anscache", false, "answer repeated or provably-contained queries from a bounded per-engine answer cache")
		anscacheCap = flag.Int("anscache-cap", 0, "answer-cache entries per engine (0 = default)")
		headerWait  = flag.Duration("read-header-timeout", 5*time.Second, "how long a connection may take to send its request headers")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight queries on SIGINT/SIGTERM")
		traceSample = flag.Int("trace-sample", 0, "keep a span tree for one request in N (0 = tracing off, 1 = every request)")
		traceRing   = flag.Int("trace-ring", 0, "recent traces kept for /tracez (0 = default)")
		slowQuery   = flag.Duration("slow-query", serve.DefaultSlowQuery, "log queries slower than this with per-phase timings (negative disables)")
		qstatsCap   = flag.Int("qstats-cap", 0, "query fingerprints tracked for /queryz (0 = default)")
		eventLog    = flag.String("eventlog", "", "write a structured JSONL wide-event log to this file (replaces the plain slow-query log line)")
		eventMax    = flag.Int64("eventlog-max-bytes", 0, "rotate the event log when it would exceed this size (0 = default; one predecessor file is kept)")
		eventSample = flag.Int("eventlog-sample", 0, "also log one successful request in N (0 = errors and slow queries only)")
		unfold      = flag.Bool("unfold-rewrite", false, "rewrite recursive views by unfolding to each document height (Section 4.2 oracle) instead of the default height-free automata")
		classes     classFlags
	)
	flag.Var(&classes, "class", "define a user class from an annotation file, e.g. -class nurse=nurse.ann (repeatable)")
	flag.Parse()

	if *docPath == "" {
		fatal(fmt.Errorf("need -doc"))
	}
	engineCfg := core.Config{
		Parallel:            *parallel,
		ParallelConfig:      xpath.ParallelConfig{Workers: *workers, Threshold: *threshold},
		Indexed:             *indexed,
		IndexThreshold:      *indexMin,
		AnswerCache:         *anscache,
		AnswerCacheCapacity: *anscacheCap,
		UnfoldRewrite:       *unfold,
	}
	reg, err := buildRegistry(*builtin, *dtdPath, classes, engineCfg)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := xmltree.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := xmltree.Validate(doc, reg.DTD()); err != nil {
		fatal(fmt.Errorf("document does not conform to the DTD: %v", err))
	}

	var events *eventlog.Writer
	if *eventLog != "" {
		events, err = eventlog.New(*eventLog, *eventMax)
		if err != nil {
			fatal(err)
		}
		defer events.Close()
	}
	srv := serve.New(reg, doc, serve.Config{
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		MaxInFlight:         *maxInFlight,
		TraceSampleEvery:    *traceSample,
		TraceRingSize:       *traceRing,
		SlowQueryThreshold:  *slowQuery,
		QueryStatsCapacity:  *qstatsCap,
		EventLog:            events,
		EventLogSampleEvery: *eventSample,
	})
	// A configured http.Server rather than bare ListenAndServe: the
	// header timeout unpins connections from clients that never finish
	// their request line, and the signal handler drains in-flight
	// queries instead of dropping them mid-evaluation — load-test cycles
	// (start, drive, SIGTERM, read counters) depend on both.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *headerWait,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		sig := <-sigs
		log.Printf("svserve: %v: draining in-flight queries (up to %v)", sig, *drain)
		// Flip /healthz to 503 first so load balancers stop routing new
		// work here while Shutdown waits for in-flight requests.
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("svserve: drain incomplete: %v", err)
		}
	}()
	log.Printf("svserve: serving %s (%d nodes, height %d) for classes %v on %s",
		*docPath, doc.Size(), doc.Height(), reg.Names(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained
	log.Printf("svserve: shut down cleanly")
}

// buildRegistry assembles the user classes: either a built-in scenario
// (one class under its conventional name) or a DTD file plus one
// -class name=annfile per user class.
func buildRegistry(builtin, dtdPath string, classes classFlags, engineCfg core.Config) (*policy.Registry, error) {
	if builtin != "" {
		spec, err := cli.LoadSpec(builtin, "", "")
		if err != nil {
			return nil, err
		}
		reg := policy.NewRegistryWithConfig(spec.D, 0, engineCfg)
		if _, err := reg.DefineSpec(builtinClassNames[builtin], spec); err != nil {
			return nil, err
		}
		return reg, nil
	}
	if dtdPath == "" || len(classes) == 0 {
		return nil, fmt.Errorf("need -builtin, or -dtd with at least one -class name=annfile")
	}
	d, err := cli.LoadDTD(dtdPath)
	if err != nil {
		return nil, err
	}
	reg := policy.NewRegistryWithConfig(d, 0, engineCfg)
	for _, c := range classes {
		src, err := os.ReadFile(c.path)
		if err != nil {
			return nil, err
		}
		if _, err := reg.Define(c.name, string(src)); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// classFlags is the repeatable "-class name=annfile" flag.
type classFlags []struct{ name, path string }

func (c *classFlags) String() string {
	parts := make([]string, len(*c))
	for i, e := range *c {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (c *classFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("expected name=annfile, got %q", v)
	}
	*c = append(*c, struct{ name, path string }{name, path})
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svserve:", err)
	os.Exit(1)
}
