// Command svquery answers XPath queries over a security view without
// materializing it: it derives (or loads) the view, rewrites the query
// into an equivalent query over the original document, optimizes it
// against the document DTD, evaluates, and prints the result as XML.
//
// Usage:
//
//	svquery -dtd hospital.dtd -spec nurse.ann -doc ward.xml \
//	        -param wardNo=6 -q '//patient/name'
//	svquery -builtin hospital -doc ward.xml -param wardNo=6 -q '//patient'
//	svquery -view nurse.view -doc ward.xml -q '//patient'
//
// Flags -show-rewrite and -show-optimize print the intermediate queries;
// -explain prints a JSON explain document instead of the result XML
// (the intermediate queries plus fresh per-phase timings and the eval
// mode — the CLI twin of the server's /explainz); -no-optimize skips
// the optimization pass; -indexed evaluates with the label-index
// evaluator; -parallel evaluates with the worker-pool evaluator
// (-workers bounds it); the two are mutually exclusive. -stats prints
// the engine's plan-cache and evaluation counters to stderr, plus the
// query's fingerprint (the hash the server's /queryz rows and event-log
// records key on); -anscache
// answers repeats (and provably-contained restrictions) from a bounded
// semantic answer cache; -repeat re-runs the query to exercise the
// plan and answer caches; -timeout bounds each
// evaluation with a deadline regardless of evaluator (a query that
// exceeds it fails with a context error).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qstats"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func main() {
	var (
		dtdPath    = flag.String("dtd", "", "document DTD file")
		specPath   = flag.String("spec", "", "access specification file")
		builtin    = flag.String("builtin", "", "use a built-in scenario: hospital, adex, or fig7")
		viewPath   = flag.String("view", "", "load a saved view definition (from svderive -save) instead of -dtd/-spec")
		docPath    = flag.String("doc", "", "XML document file")
		query      = flag.String("q", "", "XPath query over the security view")
		showRw     = flag.Bool("show-rewrite", false, "print the rewritten document query")
		showOpt    = flag.Bool("show-optimize", false, "print the optimized document query")
		explain    = flag.Bool("explain", false, "print a JSON explain (per-phase timings, intermediate queries, eval mode) instead of the result")
		noOptimize = flag.Bool("no-optimize", false, "skip the DTD-based optimization pass")
		indexed    = flag.Bool("indexed", false, "evaluate with the label-index evaluator")
		parallel   = flag.Bool("parallel", false, "evaluate with the parallel worker-pool evaluator")
		workers    = flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
		anscache   = flag.Bool("anscache", false, "answer repeated or provably-contained queries from a bounded answer cache (pair with -repeat)")
		stats      = flag.Bool("stats", false, "print plan-cache and evaluation counters to stderr")
		repeat     = flag.Int("repeat", 1, "run the query this many times (repeats hit the plan and answer caches)")
		timeout    = flag.Duration("timeout", 0, "per-evaluation deadline, e.g. 250ms (0 = none)")
		params     cli.Params
	)
	flag.Var(&params, "param", "bind a specification parameter, e.g. -param wardNo=6 (repeatable)")
	flag.Parse()

	if *query == "" || *docPath == "" {
		fatal(fmt.Errorf("need -q and -doc"))
	}
	if *indexed && *parallel {
		fatal(fmt.Errorf("-indexed and -parallel are mutually exclusive; pick one evaluator"))
	}
	if *repeat < 1 {
		*repeat = 1
	}
	cfg := core.Config{
		Parallel:       *parallel,
		ParallelConfig: xpath.ParallelConfig{Workers: *workers},
		AnswerCache:    *anscache,
	}
	engine, err := buildEngine(*viewPath, *builtin, *dtdPath, *specPath, params, cfg)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := xmltree.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := xmltree.Validate(doc, engine.DocumentDTD()); err != nil {
		fatal(fmt.Errorf("document does not conform to the DTD: %v", err))
	}

	p, err := xpath.Parse(*query)
	if err != nil {
		fatal(err)
	}
	if *explain {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		ex, err := engine.ExplainCtx(ctx, doc, p)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ex); err != nil {
			fatal(err)
		}
		printStats(engine, *stats, nil)
		return
	}
	if *showRw || *showOpt || *noOptimize || *indexed {
		pt, err := engine.Rewrite(p, doc.Height())
		if err != nil {
			fatal(err)
		}
		if *showRw {
			fmt.Fprintf(os.Stderr, "rewritten: %s\n", xpath.String(pt))
		}
		final := pt
		if !*noOptimize {
			final = engine.Optimize(pt)
			if *showOpt {
				fmt.Fprintf(os.Stderr, "optimized: %s\n", xpath.String(final))
			}
		}
		if *noOptimize || *indexed {
			ctx := context.Background()
			if *timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, *timeout)
				defer cancel()
			}
			var result []*xmltree.Node
			var evalStats xpath.ParallelStats
			switch {
			case *indexed:
				if result, err = xpath.EvalIndexedCtx(ctx, final, xpath.NewIndex(doc)); err != nil {
					fatal(err)
				}
			case *parallel:
				if result, err = xpath.EvalDocParallelCtx(ctx, final, doc, cfg.ParallelConfig, &evalStats); err != nil {
					fatal(err)
				}
			default:
				if result, err = xpath.EvalDocCtx(ctx, final, doc); err != nil {
					fatal(err)
				}
			}
			printResult(result)
			if *stats {
				seq, par, forks, parts := evalStats.Snapshot()
				fmt.Fprintf(os.Stderr, "evaluation:   %d sequential, %d parallel (%d union forks, %d partitions)\n",
					seq, par, forks, parts)
			}
			return
		}
	}
	var result []*xmltree.Node
	qm := &obs.QueryMetrics{}
	for i := 0; i < *repeat; i++ {
		if result, err = queryOnce(engine, doc, p, *timeout, qm); err != nil {
			fatal(err)
		}
	}
	printResult(result)
	printStats(engine, *stats, qm)
}

// queryOnce runs one evaluation under the optional deadline, filling qm
// with the request's metrics (the last repeat wins).
func queryOnce(engine *core.Engine, doc *xmltree.Document, p xpath.Path, timeout time.Duration, qm *obs.QueryMetrics) ([]*xmltree.Node, error) {
	ctx := obs.WithQueryMetrics(context.Background(), qm)
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return engine.QueryCtx(ctx, doc, p)
}

func printResult(result []*xmltree.Node) {
	for _, n := range result {
		fmt.Print(n.String())
	}
}

// printStats dumps the engine counters; when qm carries a surfaced
// plan it also prints the query's fingerprint — the hash the server's
// /queryz rows and event-log records key on (class-less here, since a
// single-engine CLI has no user-class dimension).
func printStats(engine *core.Engine, show bool, qm *obs.QueryMetrics) {
	if !show {
		return
	}
	if qm != nil && qm.PlanText != "" {
		fmt.Fprintf(os.Stderr, "fingerprint:  %s  plan: %s\n", qstats.Fingerprint("", qm.PlanText), qm.PlanText)
	}
	s := engine.Stats()
	fmt.Fprintf(os.Stderr, "queries:      %d (%d cancelled)\n", s.Queries, s.Cancelled)
	fmt.Fprintf(os.Stderr, "plan cache:   %d hits, %d misses, %d evictions, %d/%d entries\n",
		s.PlanCache.Hits, s.PlanCache.Misses, s.PlanCache.Evictions, s.PlanCache.Entries, s.PlanCache.Capacity)
	fmt.Fprintf(os.Stderr, "height cache: %d hits, %d misses, %d evictions, %d/%d entries\n",
		s.HeightCache.Hits, s.HeightCache.Misses, s.HeightCache.Evictions, s.HeightCache.Entries, s.HeightCache.Capacity)
	fmt.Fprintf(os.Stderr, "evaluation:   %d sequential, %d parallel, %d indexed (%d union forks, %d partitions)\n",
		s.SequentialEvals, s.ParallelEvals, s.IndexedEvals, s.UnionForks, s.Partitions)
	if s.AnswerCache.Capacity > 0 {
		fmt.Fprintf(os.Stderr, "answer cache: %d hits, %d containment hits, %d misses, %d evictions, %d/%d entries\n",
			s.AnswerCache.Hits, s.AnswerCache.ContainmentHits, s.AnswerCache.Misses,
			s.AnswerCache.Evictions, s.AnswerCache.Entries, s.AnswerCache.Capacity)
	}
}

func buildEngine(viewPath, builtin, dtdPath, specPath string, params cli.Params, cfg core.Config) (*core.Engine, error) {
	if viewPath != "" {
		data, err := os.ReadFile(viewPath)
		if err != nil {
			return nil, err
		}
		view, err := secview.UnmarshalView(data)
		if err != nil {
			return nil, err
		}
		return core.FromViewConfig(view, cfg)
	}
	spec, err := cli.LoadSpec(builtin, dtdPath, specPath)
	if err != nil {
		return nil, err
	}
	if spec, err = cli.BindIfNeeded(spec, params); err != nil {
		return nil, err
	}
	return core.NewWithConfig(spec, cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svquery:", err)
	os.Exit(1)
}
