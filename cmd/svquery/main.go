// Command svquery answers XPath queries over a security view without
// materializing it: it derives (or loads) the view, rewrites the query
// into an equivalent query over the original document, optimizes it
// against the document DTD, evaluates, and prints the result as XML.
//
// Usage:
//
//	svquery -dtd hospital.dtd -spec nurse.ann -doc ward.xml \
//	        -param wardNo=6 -q '//patient/name'
//	svquery -builtin hospital -doc ward.xml -param wardNo=6 -q '//patient'
//	svquery -view nurse.view -doc ward.xml -q '//patient'
//
// Flags -show-rewrite and -show-optimize print the intermediate queries;
// -no-optimize skips the optimization pass; -indexed evaluates with the
// label-index evaluator.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func main() {
	var (
		dtdPath    = flag.String("dtd", "", "document DTD file")
		specPath   = flag.String("spec", "", "access specification file")
		builtin    = flag.String("builtin", "", "use a built-in scenario: hospital, adex, or fig7")
		viewPath   = flag.String("view", "", "load a saved view definition (from svderive -save) instead of -dtd/-spec")
		docPath    = flag.String("doc", "", "XML document file")
		query      = flag.String("q", "", "XPath query over the security view")
		showRw     = flag.Bool("show-rewrite", false, "print the rewritten document query")
		showOpt    = flag.Bool("show-optimize", false, "print the optimized document query")
		noOptimize = flag.Bool("no-optimize", false, "skip the DTD-based optimization pass")
		indexed    = flag.Bool("indexed", false, "evaluate with the label-index evaluator")
		params     cli.Params
	)
	flag.Var(&params, "param", "bind a specification parameter, e.g. -param wardNo=6 (repeatable)")
	flag.Parse()

	if *query == "" || *docPath == "" {
		fatal(fmt.Errorf("need -q and -doc"))
	}
	engine, err := buildEngine(*viewPath, *builtin, *dtdPath, *specPath, params)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*docPath)
	if err != nil {
		fatal(err)
	}
	doc, err := xmltree.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := xmltree.Validate(doc, engine.DocumentDTD()); err != nil {
		fatal(fmt.Errorf("document does not conform to the DTD: %v", err))
	}

	p, err := xpath.Parse(*query)
	if err != nil {
		fatal(err)
	}
	pt, err := engine.Rewrite(p, doc.Height())
	if err != nil {
		fatal(err)
	}
	if *showRw {
		fmt.Fprintf(os.Stderr, "rewritten: %s\n", xpath.String(pt))
	}
	final := pt
	if !*noOptimize {
		final = engine.Optimize(pt)
		if *showOpt {
			fmt.Fprintf(os.Stderr, "optimized: %s\n", xpath.String(final))
		}
	}
	var result []*xmltree.Node
	if *indexed {
		result = xpath.EvalIndexed(final, xpath.NewIndex(doc))
	} else {
		result = xpath.EvalDoc(final, doc)
	}
	for _, n := range result {
		fmt.Print(n.String())
	}
}

func buildEngine(viewPath, builtin, dtdPath, specPath string, params cli.Params) (*core.Engine, error) {
	if viewPath != "" {
		data, err := os.ReadFile(viewPath)
		if err != nil {
			return nil, err
		}
		view, err := secview.UnmarshalView(data)
		if err != nil {
			return nil, err
		}
		return core.FromView(view)
	}
	spec, err := cli.LoadSpec(builtin, dtdPath, specPath)
	if err != nil {
		return nil, err
	}
	if spec, err = cli.BindIfNeeded(spec, params); err != nil {
		return nil, err
	}
	return core.New(spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svquery:", err)
	os.Exit(1)
}
