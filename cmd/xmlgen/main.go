// Command xmlgen generates random XML documents conforming to a DTD —
// the stand-in for the IBM XML Generator the paper uses to produce its
// data sets by varying the maximum branching factor.
//
// Usage:
//
//	xmlgen -dtd hospital.dtd -seed 7 -max-repeat 10 > doc.xml
//	xmlgen -builtin adex -max-repeat 400 -stats
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dtd"
	"repro/internal/dtds"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
)

func main() {
	var (
		dtdPath   = flag.String("dtd", "", "DTD file (compact syntax)")
		builtin   = flag.String("builtin", "", "use a built-in DTD: hospital, adex, fig7, forum, or random-recursive")
		seed      = flag.Int64("seed", 1, "generator seed")
		minRepeat = flag.Int("min-repeat", 0, "minimum repetitions for starred productions")
		maxRepeat = flag.Int("max-repeat", 3, "maximum repetitions for starred productions (branching factor)")
		maxDepth  = flag.Int("max-depth", 30, "depth at which recursive DTDs switch to minimal expansion")
		maxNodes  = flag.Int("max-nodes", 0, "element budget after which generation switches to minimal expansion (0 = unlimited)")
		recDepth  = flag.Int("rec-depth", 0, "layer count for -builtin random-recursive (0 = default)")
		recBranch = flag.Int("rec-branching", 0, "extra-edge bound for -builtin random-recursive (0 = default)")
		printDTD  = flag.Bool("print-dtd", false, "print the (possibly generated) DTD to stderr")
		stats     = flag.Bool("stats", false, "print document statistics to stderr")
	)
	flag.Parse()

	var d *dtd.DTD
	var dtdSource string
	switch *builtin {
	case "hospital":
		d = dtds.Hospital()
	case "adex":
		d = dtds.Adex()
	case "fig7":
		d = dtds.Fig7()
	case "forum":
		d = dtds.Forum()
	case "random-recursive":
		// The DTD shape is drawn from the same seed that drives document
		// generation, so one seed pins the whole artifact.
		dtdSource = dtds.RandomRecursiveDTDSource(rand.New(rand.NewSource(*seed)),
			dtds.RecursiveGen{Depth: *recDepth, Branching: *recBranch})
		d = dtd.MustParse(dtdSource)
	case "":
		if *dtdPath == "" {
			fatal(fmt.Errorf("need -dtd or -builtin"))
		}
		src, err := os.ReadFile(*dtdPath)
		if err != nil {
			fatal(err)
		}
		parsed, err := dtd.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		d = parsed
	default:
		fatal(fmt.Errorf("unknown builtin %q", *builtin))
	}

	doc := xmlgen.Generate(d, xmlgen.Config{
		Seed:      *seed,
		MinRepeat: *minRepeat,
		MaxRepeat: *maxRepeat,
		MaxDepth:  *maxDepth,
		MaxNodes:  *maxNodes,
	})
	if err := xmltree.Validate(doc, d); err != nil {
		fatal(fmt.Errorf("internal error: generated document does not conform: %v", err))
	}
	if *printDTD {
		if dtdSource == "" {
			dtdSource = d.String()
		}
		fmt.Fprint(os.Stderr, dtdSource)
	}
	if *stats {
		s := doc.ComputeStats()
		fmt.Fprintf(os.Stderr, "nodes=%d elements=%d text=%d height=%d labels=%d\n",
			s.Nodes, s.Elements, s.TextNodes, s.Height, len(s.Labels))
	}
	if err := doc.Serialize(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlgen:", err)
	os.Exit(1)
}
