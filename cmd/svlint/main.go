// Command svlint statically checks an access specification: redundant or
// unreachable annotations, trivial conditions, and derived-view abort
// risks (the practical side of Theorem 3.2's "iff such a view exists").
//
// Usage:
//
//	svlint -dtd hospital.dtd -spec nurse.ann [-param wardNo=6]
//	svlint -builtin hospital
//
// Exit status is 1 when any issue is found.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	var (
		dtdPath  = flag.String("dtd", "", "document DTD file")
		specPath = flag.String("spec", "", "access specification file")
		builtin  = flag.String("builtin", "", "use a built-in scenario: hospital, adex, or fig7")
		params   cli.Params
	)
	flag.Var(&params, "param", "bind a specification parameter, e.g. -param wardNo=6 (repeatable)")
	flag.Parse()

	spec, err := cli.LoadSpec(*builtin, *dtdPath, *specPath)
	if err != nil {
		fatal(err)
	}
	if spec, err = cli.BindIfNeeded(spec, params); err != nil {
		fatal(err)
	}
	issues := lint.Check(spec)
	if len(issues) == 0 {
		fmt.Println("svlint: no issues")
		return
	}
	for _, issue := range issues {
		fmt.Println(issue)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svlint:", err)
	os.Exit(1)
}
