// Command promcheck validates Prometheus text exposition (format
// 0.0.4) read from stdin or from files given as arguments: every sample
// parses, every family declares its TYPE before its samples, histogram
// series carry cumulative le buckets ending in +Inf with _count equal
// to the +Inf bucket. CI pipes /metricsz through it to assert the
// endpoint stays scrapeable.
//
// Usage:
//
//	curl -s localhost:8344/metricsz | promcheck
//	promcheck metrics.txt
//
// Exit status 0 when every input validates, 1 otherwise.
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		if err := obs.ValidateExposition(os.Stdin); err != nil {
			fail("stdin", err)
		}
		fmt.Println("promcheck: stdin: ok")
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fail(path, err)
		}
		err = obs.ValidateExposition(f)
		f.Close()
		if err != nil {
			fail(path, err)
		}
		fmt.Printf("promcheck: %s: ok\n", path)
	}
}

func fail(src string, err error) {
	fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
	os.Exit(1)
}
