// Command svbench regenerates the paper's Table 1: query evaluation time
// for the naive, rewrite, and optimize approaches over the four Adex data
// sets, plus the rewritten/optimized query forms behind each row.
//
// Usage:
//
//	svbench                 # default data sets (D1-D4)
//	svbench -quick          # small data sets for a fast sanity run
//	svbench -repeats 5      # average more evaluations per cell
//	svbench -queries        # also print per-query rewriting details
//	svbench -height-sweep   # recursive rewriting: height-free vs unfold
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchtable"
	"repro/internal/dtds"
	"repro/internal/rewrite"
	"repro/internal/secview"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "small data sets for a fast run")
		repeats = flag.Int("repeats", 3, "evaluations averaged per cell")
		seed    = flag.Int64("seed", 1, "generator seed")
		queries = flag.Bool("queries", false, "print rewritten and optimized query forms")
		indexed = flag.Bool("indexed", false, "use the label-index evaluator instead of the tree walker")
		sweep   = flag.Bool("height-sweep", false, "print the recursive-view height sweep (height-free vs unfold) instead of Table 1")
	)
	flag.Parse()

	if *sweep {
		if err := heightSweep(*repeats); err != nil {
			fmt.Fprintln(os.Stderr, "svbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := benchtable.Config{Repeats: *repeats, Seed: *seed, Verify: true, Indexed: *indexed}
	if *quick {
		cfg.DataSets = []benchtable.DataSet{
			{Name: "D1", MaxRepeat: 100},
			{Name: "D2", MaxRepeat: 500},
			{Name: "D3", MaxRepeat: 1600},
			{Name: "D4", MaxRepeat: 2400},
		}
	}
	report, err := benchtable.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svbench:", err)
		os.Exit(1)
	}
	fmt.Println("Table 1 — secure query evaluation: naive vs rewrite vs optimize")
	fmt.Println("(all approaches verified to return identical answers)")
	fmt.Println()
	fmt.Print(report.Format())

	if *queries {
		fmt.Println("\nQuery forms (rewritten over the document DTD):")
		seen := map[string]bool{}
		for _, c := range report.Cells {
			if seen[c.Query] {
				continue
			}
			seen[c.Query] = true
			fmt.Printf("  %s rewritten: %s\n", c.Query, c.RewrittenQuery)
			if c.OptimizeDiffers {
				fmt.Printf("  %s optimized: %s\n", c.Query, c.OptimizedQuery)
			} else {
				fmt.Printf("  %s optimized: (unchanged)\n", c.Query)
			}
		}
	}
}

// heightSweep prints rewrite time, plan node count, and evaluation time
// for both recursive-view rewriting treatments over Fig. 7 documents of
// growing height — the EXPERIMENTS.md height-sweep table.
func heightSweep(repeats int) error {
	view, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		return err
	}
	p := xpath.MustParse("//b")
	fmt.Println("Height sweep — recursive-view rewriting of //b over Fig. 7: height-free vs §4.2 unfolding")
	fmt.Println("(both treatments verified to return identical answers at every height)")
	fmt.Println()
	fmt.Printf("%8s %8s | %12s %12s %12s | %12s %12s %12s\n",
		"height", "nodes", "hf-rewrite", "hf-plan", "hf-eval", "unf-rewrite", "unf-plan", "unf-eval")
	for _, height := range []int{4, 8, 16, 32} {
		doc := xmlgen.Generate(dtds.Fig7(), xmlgen.Config{
			Seed: int64(height), MinRepeat: 1, MaxRepeat: 2, MaxDepth: height, MaxNodes: 4000,
		})
		var ptHF, ptOr xpath.Path
		hfRewrite := timeIt(repeats, func() error {
			r, err := rewrite.ForView(view)
			if err != nil {
				return err
			}
			ptHF, err = r.Rewrite(p)
			return err
		})
		unfRewrite := timeIt(repeats, func() error {
			r, err := rewrite.ForViewWithHeight(view, doc.Height())
			if err != nil {
				return err
			}
			ptOr, err = r.Rewrite(p)
			return err
		})
		if got, want := len(xpath.EvalDoc(ptHF, doc)), len(xpath.EvalDoc(ptOr, doc)); got != want {
			return fmt.Errorf("height %d: treatments disagree: height-free %d nodes, unfold %d", height, got, want)
		}
		hfEval := timeIt(repeats, func() error { xpath.EvalDoc(ptHF, doc); return nil })
		unfEval := timeIt(repeats, func() error { xpath.EvalDoc(ptOr, doc); return nil })
		fmt.Printf("%8d %8d | %12v %12d %12v | %12v %12d %12v\n",
			doc.Height(), doc.Size(),
			hfRewrite.Round(time.Microsecond), xpath.Size(ptHF), hfEval.Round(time.Microsecond),
			unfRewrite.Round(time.Microsecond), xpath.Size(ptOr), unfEval.Round(time.Microsecond))
	}
	return nil
}

// timeIt returns the best-of-repeats wall time of f (panics bubble up;
// rewrite/eval errors in the sweep are programming errors).
func timeIt(repeats int, f func() error) time.Duration {
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := f(); err != nil {
			panic(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best
}
