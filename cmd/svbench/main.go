// Command svbench regenerates the paper's Table 1: query evaluation time
// for the naive, rewrite, and optimize approaches over the four Adex data
// sets, plus the rewritten/optimized query forms behind each row.
//
// Usage:
//
//	svbench                 # default data sets (D1-D4)
//	svbench -quick          # small data sets for a fast sanity run
//	svbench -repeats 5      # average more evaluations per cell
//	svbench -queries        # also print per-query rewriting details
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchtable"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "small data sets for a fast run")
		repeats = flag.Int("repeats", 3, "evaluations averaged per cell")
		seed    = flag.Int64("seed", 1, "generator seed")
		queries = flag.Bool("queries", false, "print rewritten and optimized query forms")
		indexed = flag.Bool("indexed", false, "use the label-index evaluator instead of the tree walker")
	)
	flag.Parse()

	cfg := benchtable.Config{Repeats: *repeats, Seed: *seed, Verify: true, Indexed: *indexed}
	if *quick {
		cfg.DataSets = []benchtable.DataSet{
			{Name: "D1", MaxRepeat: 100},
			{Name: "D2", MaxRepeat: 500},
			{Name: "D3", MaxRepeat: 1600},
			{Name: "D4", MaxRepeat: 2400},
		}
	}
	report, err := benchtable.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svbench:", err)
		os.Exit(1)
	}
	fmt.Println("Table 1 — secure query evaluation: naive vs rewrite vs optimize")
	fmt.Println("(all approaches verified to return identical answers)")
	fmt.Println()
	fmt.Print(report.Format())

	if *queries {
		fmt.Println("\nQuery forms (rewritten over the document DTD):")
		seen := map[string]bool{}
		for _, c := range report.Cells {
			if seen[c.Query] {
				continue
			}
			seen[c.Query] = true
			fmt.Printf("  %s rewritten: %s\n", c.Query, c.RewrittenQuery)
			if c.OptimizeDiffers {
				fmt.Printf("  %s optimized: %s\n", c.Query, c.OptimizedQuery)
			} else {
				fmt.Printf("  %s optimized: (unchanged)\n", c.Query)
			}
		}
	}
}
