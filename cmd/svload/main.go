// Command svload load-tests the security-view query server: it ramps a
// weighted query mix through a sequence of load levels against either an
// in-process serve.Server or a running svserve (-url), classifies every
// response (200/400/429/500/504), and writes a JSON report of
// throughput, latency percentiles, and rejection counts per level.
//
// The paper (§6) measures single-query rewriting and evaluation cost;
// svload measures the serving extension's claim instead — that under
// overload, admission control (429) keeps the latency of admitted
// queries bounded. The report's "finding" section states exactly that:
// at the most saturated level, rejections are nonzero while the
// admitted p99 stays under the per-request deadline.
//
// Usage:
//
//	svload -builtin hospital -levels 4,16,64 -duration 2s -out BENCH_svload.json
//	svload -builtin fig7 -gen-repeat 3 -rates 200,1000,5000
//	svload -url http://localhost:8344 -builtin hospital -levels 8,32
//
// The default mix per scenario spans cheap label paths, descendant /
// recursive-view queries, and qualifier-heavy queries; override it with
// repeatable -query name:weight:class:query[:param=value,...] flags.
// -zipf skews the mix's popularity (a few hot queries dominate, as in
// real query logs) and -anscache turns on the in-process engines'
// semantic answer cache — together they form the repeated-query
// scenario that measures the answer cache's effect:
//
//	svload -builtin hospital -zipf 1.2 -anscache -levels 16 -duration 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/dtds"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/qstats"
	"repro/internal/serve"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func main() {
	var (
		builtin     = flag.String("builtin", "hospital", "scenario: hospital, hospital-large, adex, fig7, or forum")
		docPath     = flag.String("doc", "", "XML document file (default: generate one for the scenario)")
		genSeed     = flag.Int64("gen-seed", 1, "document generator seed")
		genRepeat   = flag.Int("gen-repeat", 0, "document generator branching factor (0 = scenario default)")
		targetURL   = flag.String("url", "", "drive a running svserve at this base URL instead of in-process")
		levels      = flag.String("levels", "4,16,64", "comma-separated closed-loop concurrency levels")
		rates       = flag.String("rates", "", "comma-separated open-loop request rates (rps); overrides -levels")
		duration    = flag.Duration("duration", 2*time.Second, "wall time per level")
		timeout     = flag.Duration("timeout", 250*time.Millisecond, "per-request evaluation deadline")
		maxInFlight = flag.Int("max-inflight", 16, "in-process server admission limit (excess gets 429)")
		parallel    = flag.Bool("parallel", false, "in-process engines use the parallel worker-pool evaluator")
		workers     = flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
		indexed     = flag.Bool("indexed", true, "in-process engines answer large-document descendant queries from a cached label index")
		anscache    = flag.Bool("anscache", false, "in-process engines answer repeated or provably-contained queries from a semantic answer cache")
		zipf        = flag.Float64("zipf", 0, "Zipf-skew the mix's popularity with this exponent (0 = keep the mix's own weights); pair with -anscache for the repeated-query scenario")
		backoff     = flag.Duration("reject-backoff", time.Millisecond, "closed-loop pause after a 429 before retrying (negative = spin)")
		seed        = flag.Int64("seed", 1, "load-schedule seed")
		out         = flag.String("out", "BENCH_svload.json", "report file (\"-\" for stdout only)")
		quiet       = flag.Bool("q", false, "suppress the per-level progress table")
	)
	var queryFlags mixFlags
	flag.Var(&queryFlags, "query", "mix entry name:weight:class:query[:param=value,...] (repeatable; replaces the default mix)")
	flag.Parse()

	mix := loadgen.Mix(queryFlags)
	if len(mix) == 0 {
		var err error
		mix, err = defaultMix(*builtin)
		if err != nil {
			fatal(err)
		}
	}
	mix = loadgen.ZipfMix(mix, *zipf)

	var target loadgen.Target
	var srv *serve.Server
	scenarioDoc := ""
	var doc *xmltree.Document
	if *targetURL != "" {
		target = loadgen.URLTarget{BaseURL: strings.TrimRight(*targetURL, "/")}
		scenarioDoc = *targetURL
	} else {
		reg, d, err := buildScenario(*builtin, *docPath, *genSeed, *genRepeat, core.Config{
			Parallel:       *parallel,
			ParallelConfig: xpath.ParallelConfig{Workers: *workers},
			Indexed:        *indexed,
			AnswerCache:    *anscache,
		})
		if err != nil {
			fatal(err)
		}
		doc = d
		srv = serve.New(reg, doc, serve.Config{
			DefaultTimeout: *timeout,
			MaxTimeout:     2 * *timeout,
			MaxInFlight:    *maxInFlight,
		})
		target = loadgen.HandlerTarget{Handler: srv.Handler()}
		scenarioDoc = fmt.Sprintf("generated(%s, seed=%d)", *builtin, *genSeed)
		if *docPath != "" {
			scenarioDoc = *docPath
		}
	}

	rep := report{
		Tool:        "svload",
		Scenario:    *builtin,
		Document:    scenarioDoc,
		TimeoutNs:   int64(*timeout),
		DurationNs:  int64(*duration),
		MaxInFlight: *maxInFlight,
		Mix:         mix,
		Zipf:        *zipf,
		AnswerCache: *anscache,
	}
	if doc != nil {
		rep.DocNodes, rep.DocHeight = doc.Size(), doc.Height()
	}

	// Allocation accounting only makes sense in-process: settle the heap
	// first so the deltas measure the load, not scenario construction.
	var memBefore runtime.MemStats
	if srv != nil {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}

	base := loadgen.Config{Mix: mix, Duration: *duration, Timeout: *timeout, RejectBackoff: *backoff, Seed: *seed}
	ctx := context.Background()
	if *rates != "" {
		for _, rate := range parseFloats(*rates) {
			cfg := base
			cfg.RateRPS = rate
			res := runLevel(ctx, target, cfg, *quiet)
			res.Mode, res.OfferedRPS = "open", rate
			rep.Levels = append(rep.Levels, res)
		}
	} else {
		for _, c := range parseInts(*levels) {
			cfg := base
			cfg.Concurrency = c
			res := runLevel(ctx, target, cfg, *quiet)
			res.Mode, res.Concurrency = "closed", c
			rep.Levels = append(rep.Levels, res)
		}
	}
	if len(rep.Levels) == 0 {
		fatal(fmt.Errorf("no load levels (check -levels / -rates)"))
	}

	rep.Finding = findVerdict(rep.Levels, *timeout)
	if srv != nil {
		st := srv.Stats().Server
		rep.Server = &st
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		rep.Mem = newMemReport(memBefore, memAfter, st.Requests)
	}
	rep.TopQueries = topFingerprints(srv, *targetURL)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out != "-" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "svload: wrote %s\n", *out)
	} else {
		fmt.Println(string(blob))
	}
	if !*quiet {
		f := rep.Finding
		fmt.Fprintf(os.Stderr, "svload: saturated level %s: %d rejected, admitted p99 %.2fms (deadline %v, bounded=%v)\n",
			f.SaturatedLevel, f.Rejected, f.AdmittedP99Us/1000, *timeout, f.AdmittedP99UnderDeadline)
	}
	if f := rep.Finding; f.Rejected > 0 && !f.AdmittedP99UnderDeadline {
		// Overload was reached but the latency bound did not hold — the
		// one outcome the admission-control design forbids.
		os.Exit(2)
	}
}

// report is the BENCH_svload.json schema.
type report struct {
	Tool        string             `json:"tool"`
	Scenario    string             `json:"scenario"`
	Document    string             `json:"document"`
	DocNodes    int                `json:"doc_nodes,omitempty"`
	DocHeight   int                `json:"doc_height,omitempty"`
	TimeoutNs   int64              `json:"timeout_ns"`
	DurationNs  int64              `json:"duration_per_level_ns"`
	MaxInFlight int                `json:"max_in_flight"`
	Zipf        float64            `json:"zipf,omitempty"`
	AnswerCache bool               `json:"answer_cache,omitempty"`
	Mix         loadgen.Mix        `json:"mix"`
	Levels      []loadgen.Result   `json:"levels"`
	Finding     finding            `json:"finding"`
	Server      *serve.ServerStats `json:"server_stats,omitempty"`
	Mem         *memReport         `json:"mem_stats,omitempty"`
	// TopQueries is the server's five heaviest /queryz fingerprints by
	// cumulative eval time, so the bench trajectory attributes a
	// regression to the query shapes that caused it.
	TopQueries []qstats.FingerprintStats `json:"top_queries,omitempty"`
}

// topFingerprints snapshots the five heaviest fingerprint rows:
// directly from the in-process server's registry, or over HTTP
// (/queryz?n=5) when driving a remote svserve. Best-effort against a
// remote — an old server without /queryz just yields no section.
func topFingerprints(srv *serve.Server, baseURL string) []qstats.FingerprintStats {
	if srv != nil {
		return srv.QueryStats().Top(5, qstats.SortEvalTime)
	}
	resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/queryz?n=5")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var qz serve.QueryzResponse
	if err := json.NewDecoder(resp.Body).Decode(&qz); err != nil {
		return nil
	}
	return qz.Top
}

// memReport is the in-process allocation cost of serving the whole run:
// runtime.MemStats deltas from just before the first level (post-GC) to
// just after the last, normalized per admitted request. The ordinal
// bitset work is judged on this section — a representation change that
// moves allocs_per_request or gc_cycles shows up here without needing a
// profiler.
type memReport struct {
	GCCycles        uint32  `json:"gc_cycles"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	AllocsPerReq    float64 `json:"allocs_per_request"`
	BytesPerReq     float64 `json:"bytes_per_request"`
}

func newMemReport(before, after runtime.MemStats, requests uint64) *memReport {
	m := &memReport{
		GCCycles:        after.NumGC - before.NumGC,
		TotalAllocBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:         after.Mallocs - before.Mallocs,
	}
	if requests > 0 {
		m.AllocsPerReq = float64(m.Mallocs) / float64(requests)
		m.BytesPerReq = float64(m.TotalAllocBytes) / float64(requests)
	}
	return m
}

// finding is the overload verdict: at the most-rejecting level, is the
// admitted-query p99 still under the per-request deadline?
type finding struct {
	SaturatedLevel           string  `json:"saturated_level"`
	Rejected                 uint64  `json:"rejected"`
	AdmittedP99Us            float64 `json:"admitted_p99_us"`
	DeadlineUs               int64   `json:"deadline_us"`
	AdmittedP99UnderDeadline bool    `json:"admitted_p99_under_deadline"`
}

func findVerdict(levels []loadgen.Result, deadline time.Duration) finding {
	sat := levels[0]
	for _, l := range levels[1:] {
		if l.Rejected >= sat.Rejected {
			sat = l
		}
	}
	label := fmt.Sprintf("closed/c=%d", sat.Concurrency)
	if sat.Mode == "open" {
		label = fmt.Sprintf("open/rps=%g", sat.OfferedRPS)
	}
	return finding{
		SaturatedLevel:           label,
		Rejected:                 sat.Rejected,
		AdmittedP99Us:            sat.Admitted.P99Us,
		DeadlineUs:               deadline.Microseconds(),
		AdmittedP99UnderDeadline: sat.Admitted.P99Us < float64(deadline.Microseconds()),
	}
}

func runLevel(ctx context.Context, target loadgen.Target, cfg loadgen.Config, quiet bool) loadgen.Result {
	res, err := loadgen.Run(ctx, target, cfg)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		level := fmt.Sprintf("c=%d", cfg.Concurrency)
		if cfg.RateRPS > 0 {
			level = fmt.Sprintf("rps=%g", cfg.RateRPS)
		}
		fmt.Fprintf(os.Stderr,
			"svload: %-10s %8.0f req/s  ok=%-7d 429=%-7d 504=%-5d p50=%.2fms p95=%.2fms p99=%.2fms (admitted)\n",
			level, res.ThroughputRPS, res.OK, res.Rejected, res.Timeouts,
			res.Admitted.P50Us/1000, res.Admitted.P95Us/1000, res.Admitted.P99Us/1000)
	}
	return res
}

// buildScenario assembles the in-process registry and document for one
// built-in scenario, generating a document when none is supplied.
func buildScenario(builtin, docPath string, genSeed int64, genRepeat int, engineCfg core.Config) (*policy.Registry, *xmltree.Document, error) {
	var spec *access.Spec
	var class string
	var gen func(repeat int) *xmltree.Document
	switch builtin {
	case "hospital":
		spec, class = dtds.NurseSpec(), "nurse"
		gen = func(r int) *xmltree.Document { return dtds.GenerateHospital(genSeed, defaultRepeat(r, 8)) }
	case "hospital-large":
		// The structural-index serving workload: same policy, but the
		// generated document is 10k+ nodes so descendant steps dominate.
		spec, class = dtds.NurseSpec(), "nurse"
		gen = func(r int) *xmltree.Document { return dtds.GenerateHospital(genSeed, defaultRepeat(r, 48)) }
	case "adex":
		spec, class = dtds.AdexSpec(), "buyer"
		gen = func(r int) *xmltree.Document { return dtds.GenerateAdex(genSeed, defaultRepeat(r, 8)) }
	case "fig7":
		spec, class = dtds.Fig7Spec(), "user"
		gen = func(r int) *xmltree.Document {
			return xmlgen.Generate(dtds.Fig7(), xmlgen.Config{
				Seed: genSeed, MinRepeat: 1, MaxRepeat: defaultRepeat(r, 3), MaxDepth: 12,
				Value: func(rng *rand.Rand, label string) string { return fmt.Sprintf("%s-%d", label, rng.Intn(50)) },
			})
		}
	case "forum":
		spec, class = dtds.ForumGuestSpec(), "guest"
		gen = func(r int) *xmltree.Document { return dtds.GenerateForum(genSeed, defaultRepeat(r, 3), 10) }
	default:
		return nil, nil, fmt.Errorf("unknown scenario %q (want hospital, hospital-large, adex, fig7, or forum)", builtin)
	}
	reg := policy.NewRegistryWithConfig(spec.D, 0, engineCfg)
	if _, err := reg.DefineSpec(class, spec); err != nil {
		return nil, nil, err
	}
	var doc *xmltree.Document
	if docPath != "" {
		f, err := os.Open(docPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		doc, err = xmltree.Parse(f)
		if err != nil {
			return nil, nil, err
		}
	} else {
		doc = gen(genRepeat)
	}
	if err := xmltree.Validate(doc, reg.DTD()); err != nil {
		return nil, nil, fmt.Errorf("document does not conform to the %s DTD: %v", builtin, err)
	}
	return reg, doc, nil
}

func defaultRepeat(r, def int) int {
	if r > 0 {
		return r
	}
	return def
}

// defaultMix returns the scenario's standard mix (forum shares the
// recursive shape with a different class name).
func defaultMix(builtin string) (loadgen.Mix, error) {
	if builtin == "forum" {
		return loadgen.ForumMix("guest"), nil
	}
	return loadgen.MixFor(builtin)
}

// mixFlags is the repeatable -query flag.
type mixFlags []loadgen.Entry

func (m *mixFlags) String() string {
	parts := make([]string, len(*m))
	for i, e := range *m {
		parts[i] = e.Name
	}
	return strings.Join(parts, ",")
}

func (m *mixFlags) Set(v string) error {
	e, err := loadgen.ParseEntry(v)
	if err != nil {
		return err
	}
	*m = append(*m, e)
	return nil
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad level %q", part))
		}
		out = append(out, n)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil || f <= 0 {
			fatal(fmt.Errorf("bad rate %q", part))
		}
		out = append(out, f)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svload:", err)
	os.Exit(1)
}
