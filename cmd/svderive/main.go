// Command svderive derives a security view from a document DTD and an
// access specification, and prints the view definition: the view DTD that
// would be published to the user class, the hidden σ annotations
// (-sigma), or the per-type derivation report (-explain). With -save the
// full definition is written for later use by svquery -view.
//
// Usage:
//
//	svderive -dtd hospital.dtd -spec nurse.ann [-param wardNo=6]
//	svderive -builtin hospital -param wardNo=6 -explain
//	svderive -builtin adex -save adex.view
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/secview"
)

func main() {
	var (
		dtdPath  = flag.String("dtd", "", "document DTD file")
		specPath = flag.String("spec", "", "access specification file")
		builtin  = flag.String("builtin", "", "use a built-in scenario: hospital, adex, or fig7")
		sigma    = flag.Bool("sigma", false, "also print the hidden σ annotations")
		explain  = flag.Bool("explain", false, "print the per-type derivation report instead")
		element  = flag.Bool("element", false, "print the view DTD as standard <!ELEMENT> declarations")
		save     = flag.String("save", "", "write the full view definition to a file for svquery -view")
		params   cli.Params
	)
	flag.Var(&params, "param", "bind a specification parameter, e.g. -param wardNo=6 (repeatable)")
	flag.Parse()

	spec, err := cli.LoadSpec(*builtin, *dtdPath, *specPath)
	if err != nil {
		fatal(err)
	}
	if spec, err = cli.BindIfNeeded(spec, params); err != nil {
		fatal(err)
	}
	view, err := secview.Derive(spec)
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		data, err := view.MarshalText()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "svderive: wrote view definition to %s\n", *save)
	}
	switch {
	case *explain:
		fmt.Print(view.Report())
	case *sigma:
		fmt.Print(view.String())
	case *element:
		fmt.Print(view.DTD.ElementSyntax())
	default:
		fmt.Println("# view DTD exposed to the user class (σ annotations hidden; use -sigma)")
		fmt.Print(view.DTD.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svderive:", err)
	os.Exit(1)
}
