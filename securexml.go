// Package securexml is a from-scratch Go implementation of "Secure XML
// Querying with Security Views" (Fan, Chan, Garofalakis — SIGMOD 2004).
//
// The library enforces DTD-based access-control policies on XML data
// through security views: for each user class, an access specification
// annotates the document DTD with Y / [q] / N accessibility, from which a
// sound and complete security view — a view DTD plus hidden XPath
// extraction annotations σ — is derived automatically. Users see only the
// view DTD; their XPath queries are rewritten into equivalent queries
// over the original document (no view materialization) and optimized
// using the DTD's structural constraints before evaluation.
//
// # Quick start
//
//	doc, _ := securexml.ParseDocument(xmlFile)
//	d, _ := securexml.ParseDTD(dtdSource)
//	spec, _ := securexml.ParseSpec(d, "ann(dept, clinicalTrial) = N\n...")
//	engine, _ := securexml.NewEngine(spec)
//	fmt.Println(engine.ViewDTD())           // schema exposed to this user class
//	nodes, _ := engine.QueryString(doc, "//patient/name")
//
// Everything the paper describes is included: Algorithm derive (Fig. 5),
// the materialization semantics of Section 3.3 with soundness and
// completeness checking, the dynamic-programming query rewriter (Fig. 6)
// with recursive-view unfolding (Section 4.2), the approximate-containment
// optimizer (Fig. 10), the naive element-annotation baseline of Section 6
// (repro/internal/naive), and the Table 1 benchmark harness
// (bench_test.go, cmd/svbench).
package securexml

import (
	"io"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/lint"
	"repro/internal/policy"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Core model types, re-exported under stable names.
type (
	// DTD is a document type definition in the paper's production normal
	// form (str | ε | concatenation | disjunction | star).
	DTD = dtd.DTD
	// Spec is an access specification S = (D, ann).
	Spec = access.Spec
	// Ann is one security annotation (Y, N, or a conditional [q]).
	Ann = access.Ann
	// View is a derived security view V = (D_v, σ).
	View = secview.View
	// Materialized is a materialized view instance with its
	// view-to-document node correspondence.
	Materialized = secview.Materialized
	// Document is an in-memory XML document tree.
	Document = xmltree.Document
	// Node is a node of a Document.
	Node = xmltree.Node
	// Path is a parsed XPath query of the paper's fragment C.
	Path = xpath.Path
	// Engine enforces one bound access policy end to end (Fig. 3), with
	// a bounded plan cache in front of the rewrite+optimize stages.
	Engine = core.Engine
	// EngineConfig tunes an engine's serving layer: cache capacities and
	// parallel evaluation.
	EngineConfig = core.Config
	// EngineStats is a snapshot of an engine's query, cache, and
	// evaluation counters.
	EngineStats = core.Stats
	// ParallelConfig tunes the parallel evaluator's worker pool and the
	// sequential-fallback threshold.
	ParallelConfig = xpath.ParallelConfig
	// Registry manages the policies of multiple user classes over one
	// document DTD, caching derived engines per parameter binding with
	// LRU eviction.
	Registry = policy.Registry
	// LintIssue is one finding of the specification linter.
	LintIssue = lint.Issue
)

// Annotation kinds for building specifications programmatically.
const (
	Allow = access.Allow
	Deny  = access.Deny
	Cond  = access.Cond
)

// ParseDTD reads a DTD in the compact text syntax (see internal/dtd):
//
//	root hospital
//	hospital -> dept*
//	dept -> clinicalTrial, patientInfo, staffInfo
//	name -> #PCDATA
func ParseDTD(src string) (*DTD, error) { return dtd.Parse(src) }

// ParseElementDTD reads a DTD written with standard <!ELEMENT ...>
// declarations and normalizes general content models into the paper's
// production normal form by introducing synthetic element types.
func ParseElementDTD(src string) (*DTD, error) { return dtd.ParseElementSyntax(src) }

// ParseSpec reads access annotations over a DTD:
//
//	ann(hospital, dept) = [*/patient/wardNo = $wardNo]
//	ann(dept, clinicalTrial) = N
func ParseSpec(d *DTD, src string) (*Spec, error) { return access.ParseAnnotations(d, src) }

// ParseQuery reads an XPath query of the fragment C.
func ParseQuery(src string) (Path, error) { return xpath.Parse(src) }

// QueryString renders a query back to its concrete syntax.
func QueryString(p Path) string { return xpath.String(p) }

// ParseDocument reads an XML document into a tree.
func ParseDocument(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseDocumentString reads an XML document held in a string.
func ParseDocumentString(s string) (*Document, error) { return xmltree.ParseString(s) }

// Validate checks that a document conforms to a DTD.
func Validate(doc *Document, d *DTD) error { return xmltree.Validate(doc, d) }

// NewEngine derives the security view for a bound specification (no free
// $parameters — use Spec.Bind) and returns the policy-enforcement engine.
func NewEngine(spec *Spec) (*Engine, error) { return core.New(spec) }

// NewEngineWithConfig is NewEngine with explicit serving-layer tuning:
// plan/height cache capacities and parallel evaluation.
func NewEngineWithConfig(spec *Spec, cfg EngineConfig) (*Engine, error) {
	return core.NewWithConfig(spec, cfg)
}

// Derive computes just the security view for a bound specification
// (Algorithm derive, Fig. 5) without the query machinery.
func Derive(spec *Spec) (*View, error) { return secview.Derive(spec) }

// LoadView deserializes a view definition produced by View.MarshalText
// (or svderive -save), so frontends can enforce a policy without
// re-deriving it.
func LoadView(data []byte) (*View, error) { return secview.UnmarshalView(data) }

// EngineFromView builds an enforcement engine around an already-derived
// or deserialized view.
func EngineFromView(v *View) (*Engine, error) { return core.FromView(v) }

// Eval evaluates a query at a document's root without any access control
// — administrator-side plumbing and baselines only.
func Eval(p Path, doc *Document) []*Node { return xpath.EvalDoc(p, doc) }

// NewRegistry returns a policy registry over the document DTD, for
// managing multiple user classes at once.
func NewRegistry(d *DTD) *Registry { return policy.NewRegistry(d) }

// NewRegistryWithConfig is NewRegistry with serving-layer tuning:
// engineCap bounds each class's per-binding engine cache (0 keeps the
// default) and cfg is applied to every derived engine.
func NewRegistryWithConfig(d *DTD, engineCap int, cfg EngineConfig) *Registry {
	return policy.NewRegistryWithConfig(d, engineCap, cfg)
}

// Lint statically checks a specification: redundant or unreachable
// annotations, trivial conditions, and derived-view abort risks.
func Lint(spec *Spec) []LintIssue { return lint.Check(spec) }
