package securexml_test

import (
	"fmt"
	"log"

	securexml "repro"
)

// Example walks the full pipeline of the paper's Fig. 3: define a DTD and
// a policy, derive the security view, and answer a query over the view
// without materializing it.
func Example() {
	d, err := securexml.ParseDTD(`
root library
library -> book*
book -> title, internal-notes
title -> #PCDATA
internal-notes -> #PCDATA
`)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := securexml.ParseSpec(d, "ann(book, internal-notes) = N\n")
	if err != nil {
		log.Fatal(err)
	}
	engine, err := securexml.NewEngine(spec)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := securexml.ParseDocumentString(
		`<library><book><title>TAOCP</title><internal-notes>secret</internal-notes></book></library>`)
	if err != nil {
		log.Fatal(err)
	}
	titles, err := engine.QueryString(doc, "//book/title")
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range titles {
		fmt.Println(n.Text())
	}
	hidden, err := engine.QueryString(doc, "//internal-notes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hidden results:", len(hidden))
	// Output:
	// TAOCP
	// hidden results: 0
}

// ExampleDerive shows the derived view DTD for a policy with an
// inaccessible intermediate type: the hidden layer is short-cut and the
// exposed schema never mentions it.
func ExampleDerive() {
	d, err := securexml.ParseDTD(`
root r
r -> wrapper
wrapper -> payload
payload -> #PCDATA
`)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := securexml.ParseSpec(d, `
ann(r, wrapper) = N
ann(wrapper, payload) = Y
`)
	if err != nil {
		log.Fatal(err)
	}
	view, err := securexml.Derive(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(view.DTD.String())
	// Output:
	// root r
	// payload -> #PCDATA
	// r -> payload
}

// ExampleNewRegistry manages two user classes over one schema.
func ExampleNewRegistry() {
	d, err := securexml.ParseDTD(`
root store
store -> item*
item -> sku, cost
sku -> #PCDATA
cost -> #PCDATA
`)
	if err != nil {
		log.Fatal(err)
	}
	registry := securexml.NewRegistry(d)
	if _, err := registry.Define("clerk", "ann(item, cost) = N\n"); err != nil {
		log.Fatal(err)
	}
	if _, err := registry.Define("manager", ""); err != nil {
		log.Fatal(err)
	}
	doc, err := securexml.ParseDocumentString(
		`<store><item><sku>A-1</sku><cost>9</cost></item></store>`)
	if err != nil {
		log.Fatal(err)
	}
	for _, class := range registry.Names() {
		costs, err := registry.Query(class, nil, doc, "//cost")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s sees %d cost values\n", class, len(costs))
	}
	// Output:
	// clerk sees 0 cost values
	// manager sees 1 cost values
}

// ExampleLint flags a policy problem before deployment.
func ExampleLint() {
	d, err := securexml.ParseDTD(`
root r
r -> a, b
a -> #PCDATA
b -> #PCDATA
`)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := securexml.ParseSpec(d, `ann(r, a) = [. = "ok"]`)
	if err != nil {
		log.Fatal(err)
	}
	for _, issue := range securexml.Lint(spec) {
		fmt.Println(issue)
	}
	// Output:
	// abort-risk (r, a): required entry extracted by conditional query a[. = "ok"]; materialization aborts when the condition fails
}
