#!/usr/bin/env bash
# netsmoke drives a real svserve over TCP: it generates a recursive
# (fig7) document, starts the server on loopback (-anscache on), runs
# svload against it in closed-loop, open-loop, and repeated-query
# (Zipf-skewed) mode, asserts /explainz returns a full per-phase
# explain for a recursive query, validates /metricsz with promcheck and
# requires the answer cache to have served hits, checks /queryz
# fingerprint accounting against sv_pipeline_total and the structured
# event log for well-formed wide events, and finally SIGTERMs the
# server and requires a clean drain.
#
# Unlike `make loadsmoke` (in-process handler), this exercises the
# network path: ReadHeaderTimeout, real connections, graceful shutdown.
#
# Usage: scripts/netsmoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${1:-${NETSMOKE_PORT:-18344}}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SRV_PID=""

cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -KILL "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "netsmoke: FAIL: $*" >&2
    if [ -s "$WORK/svserve.log" ]; then
        echo "netsmoke: server log:" >&2
        sed 's/^/  /' "$WORK/svserve.log" >&2
    fi
    exit 1
}

echo "netsmoke: building binaries"
go build -o "$WORK/bin/" ./cmd/svserve ./cmd/svload ./cmd/promcheck ./cmd/xmlgen

echo "netsmoke: generating recursive fig7 document"
"$WORK/bin/xmlgen" -builtin fig7 -seed 1 -max-repeat 3 -max-depth 12 >"$WORK/fig7.xml"

echo "netsmoke: starting svserve on $BASE"
"$WORK/bin/svserve" -builtin fig7 -doc "$WORK/fig7.xml" -addr "127.0.0.1:${PORT}" \
    -max-inflight 8 -timeout 250ms -read-header-timeout 2s -drain 10s \
    -anscache -trace-sample 1 -slow-query 5s \
    -eventlog "$WORK/events.jsonl" -eventlog-sample 1 >"$WORK/svserve.log" 2>&1 &
SRV_PID=$!

# Wait for the server to accept connections.
up=""
for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$BASE/healthz" 2>/dev/null; then
        up=1
        break
    fi
    kill -0 "$SRV_PID" 2>/dev/null || fail "svserve exited before becoming healthy"
    sleep 0.1
done
[ -n "$up" ] || fail "svserve did not become healthy within 10s"

echo "netsmoke: closed-loop svload over TCP"
"$WORK/bin/svload" -url "$BASE" -builtin fig7 -levels 4,16 -duration 500ms \
    -timeout 250ms -out /dev/null -q

echo "netsmoke: open-loop svload over TCP (fixed 200 rps point)"
"$WORK/bin/svload" -url "$BASE" -builtin fig7 -rates 200 -duration 500ms \
    -timeout 250ms -out /dev/null -q

echo "netsmoke: repeated-query Zipf svload over TCP (answer cache serving path)"
"$WORK/bin/svload" -url "$BASE" -builtin fig7 -zipf 1.2 -levels 8 -duration 500ms \
    -timeout 250ms -out /dev/null -q

echo "netsmoke: large-document scenario (structural index serving path)"
"$WORK/bin/svload" -builtin hospital-large -levels 4 -duration 500ms \
    -timeout 250ms -out "$WORK/large.json" -q
python3 - "$WORK/large.json" <<'EOF' || fail "hospital-large run did not serve from the label index"
import json, sys
r = json.load(open(sys.argv[1]))
assert r["doc_nodes"] >= 10000, f'doc only {r["doc_nodes"]} nodes'
p = r["server_stats"]["pipeline"]
assert p["indexed_evals"] > 0, p
EOF

echo "netsmoke: /explainz on a recursive query"
curl -fsS --get "$BASE/explainz" \
    --data-urlencode "class=user" \
    --data-urlencode "q=//a//a/b" >"$WORK/explain.json" ||
    fail "/explainz request failed"
for field in '"rewrite_ns"' '"optimize_ns"' '"eval_ns"' '"rewritten"' '"optimized"' '"eval_mode"' '"trace"'; do
    grep -q "$field" "$WORK/explain.json" || fail "/explainz response missing $field"
done
# The explain path bypasses the plan cache, so all three phases must
# report nonzero durations even on a warm server.
python3 - "$WORK/explain.json" <<'EOF' || fail "/explainz phase timings not all positive"
import json, sys
e = json.load(open(sys.argv[1]))["explain"]
assert e["rewrite_ns"] > 0 and e["optimize_ns"] > 0 and e["eval_ns"] > 0, e
EOF

echo "netsmoke: /metricsz validates as Prometheus text exposition"
curl -fsS "$BASE/metricsz" >"$WORK/metrics.txt" || fail "/metricsz request failed"
"$WORK/bin/promcheck" "$WORK/metrics.txt" || fail "/metricsz failed promcheck"
grep -q '^sv_phase_duration_seconds_count{phase="rewrite"}' "$WORK/metrics.txt" ||
    fail "/metricsz missing per-phase histogram"
# The Zipf-skewed run repeats hot queries, so the answer cache must have
# served some of them.
awk '$1 == "sv_anscache_hits_total" { v = $2 } END { exit !(v > 0) }' "$WORK/metrics.txt" ||
    fail "/metricsz sv_anscache_hits_total not > 0 after repeated-query run"
# Every eval series must carry the node-set representation label, and
# the parsed (hence compacted) document must have produced bitset-path
# evals — losing either means the repr split regressed.
if grep '^sv_eval_total{' "$WORK/metrics.txt" | grep -qv 'repr='; then
    fail "/metricsz sv_eval_total series without a repr label"
fi
grep -q '^sv_eval_total{' "$WORK/metrics.txt" ||
    fail "/metricsz has no sv_eval_total series at all"
awk -F' ' '/^sv_eval_total\{.*repr="bitset"/ { sum += $2 } END { exit !(sum > 0) }' "$WORK/metrics.txt" ||
    fail '/metricsz sv_eval_total{repr="bitset"} not > 0 on a compacted document'
# The fingerprint-registry gauges must be present (promcheck above
# already validated their format) and the wide-event log must have
# recorded events at -eventlog-sample 1.
for series in sv_qstats_fingerprints sv_qstats_capacity sv_qstats_observations_total \
    sv_qstats_evictions_total sv_eventlog_events_total sv_eventlog_rotations_total; do
    grep -q "^$series " "$WORK/metrics.txt" || fail "/metricsz missing $series"
done
awk '$1 == "sv_eventlog_events_total" { v = $2 } END { exit !(v > 0) }' "$WORK/metrics.txt" ||
    fail "/metricsz sv_eventlog_events_total not > 0 with -eventlog-sample 1"

echo "netsmoke: /queryz fingerprint accounting"
curl -fsS "$BASE/queryz?n=0" >"$WORK/queryz.json" || fail "/queryz request failed"
# At quiescence the Count sum over every tracked fingerprint equals the
# registry's observation count equals sv_pipeline_total exactly.
python3 - "$WORK/queryz.json" "$WORK/metrics.txt" <<'EOF' || fail "/queryz accounting broken"
import json, sys
qz = json.load(open(sys.argv[1]))
rows = qz["top"]
assert rows, "no fingerprints tracked after load"
assert all(r["fingerprint"] and r["class"] and r["count"] > 0 for r in rows), rows
total = sum(r["count"] for r in rows)
pipeline = None
for line in open(sys.argv[2]):
    if line.startswith("sv_pipeline_total "):
        pipeline = int(float(line.split()[1]))
assert pipeline is not None, "sv_pipeline_total missing from /metricsz"
assert total == pipeline == qz["registry"]["observations"], (total, pipeline, qz["registry"])
EOF

echo "netsmoke: event log holds well-formed wide events"
[ -s "$WORK/events.jsonl" ] || fail "event log is empty with -eventlog-sample 1"
python3 - "$WORK/events.jsonl" <<'EOF' || fail "event log record malformed"
import json, sys
ev = json.loads(open(sys.argv[1]).readline())
for field in ("time_unix_us", "kind", "request_id", "class", "status",
              "query", "fingerprint", "total_us", "eval_us"):
    assert field in ev, f"missing {field}: {ev}"
assert ev["kind"] in ("sampled", "slow", "error"), ev
EOF

echo "netsmoke: draining (SIGTERM)"
curl -fsS "$BASE/healthz" >/dev/null || fail "healthz not OK before drain"
kill -TERM "$SRV_PID"
# Best-effort: catch the 503 drain window (may already be closed if all
# requests finished; the deterministic transition test lives in
# internal/serve). Then require a clean exit.
for _ in $(seq 1 20); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/healthz" 2>/dev/null || true)"
    [ "$code" = "503" ] && echo "netsmoke: observed 503 during drain"
    [ -z "$code" ] || [ "$code" = "000" ] && break
    sleep 0.05
done
for _ in $(seq 1 100); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$SRV_PID" 2>/dev/null && fail "svserve did not exit within 10s of SIGTERM"
SRV_PID=""
grep -q "shut down cleanly" "$WORK/svserve.log" || fail "svserve did not log a clean shutdown"

echo "netsmoke: PASS"
