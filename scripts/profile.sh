#!/usr/bin/env bash
# profile captures a CPU profile from a loaded svserve: it starts the
# server on loopback, begins a /debug/pprof/profile capture, drives the
# capture window with svload over TCP, and leaves the profile at
# profile.cpu.pprof (override with PROFILE_OUT). Inspect it with
# `go tool pprof profile.cpu.pprof`.
#
# Usage: scripts/profile.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${1:-${PROFILE_PORT:-18345}}"
BASE="http://127.0.0.1:${PORT}"
OUT="${PROFILE_OUT:-profile.cpu.pprof}"
SECONDS_CAPTURE="${PROFILE_SECONDS:-5}"
WORK="$(mktemp -d)"
SRV_PID=""

cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -KILL "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "profile: building binaries"
go build -o "$WORK/bin/" ./cmd/svserve ./cmd/svload ./cmd/xmlgen

echo "profile: generating hospital document"
"$WORK/bin/xmlgen" -builtin hospital -seed 1 -max-repeat 8 >"$WORK/hospital.xml"

echo "profile: starting svserve on $BASE"
"$WORK/bin/svserve" -builtin hospital -doc "$WORK/hospital.xml" \
    -addr "127.0.0.1:${PORT}" -max-inflight 16 -timeout 250ms \
    >"$WORK/svserve.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 100); do
    curl -fsS -o /dev/null "$BASE/healthz" 2>/dev/null && break
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$WORK/svserve.log" >&2; exit 1; }
    sleep 0.1
done

echo "profile: capturing ${SECONDS_CAPTURE}s CPU profile while svload drives the server"
curl -fsS -o "$OUT" "$BASE/debug/pprof/profile?seconds=${SECONDS_CAPTURE}" &
CURL_PID=$!
"$WORK/bin/svload" -url "$BASE" -builtin hospital -levels 16 \
    -duration "${SECONDS_CAPTURE}s" -timeout 250ms -out /dev/null -q
wait "$CURL_PID"

kill -TERM "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "profile: wrote $OUT ($(wc -c <"$OUT") bytes)"
echo "profile: inspect with: go tool pprof $OUT"
