package securexml

import (
	"strings"
	"testing"

	"repro/internal/dtds"
)

const paperDoc = `
<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>Carol</name><wardNo>6</wardNo>
          <treatment><trial><bill>900</bill></trial></treatment>
        </patient>
      </patientInfo>
    </clinicalTrial>
    <patientInfo>
      <patient><name>Alice</name><wardNo>6</wardNo>
        <treatment><regular><bill>100</bill><medication>aspirin</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse><name>Nina</name></nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo></patientInfo></clinicalTrial>
    <patientInfo>
      <patient><name>Bob</name><wardNo>7</wardNo>
        <treatment><regular><bill>70</bill><medication>ibuprofen</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><doctor><name>Dan</name></doctor></staff></staffInfo>
  </dept>
</hospital>
`

func nurseEngine(t *testing.T, ward string) *Engine {
	t.Helper()
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": ward})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	e, err := NewEngine(spec)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestEndToEndNurseQuery(t *testing.T) {
	doc, err := ParseDocumentString(paperDoc)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}
	if err := Validate(doc, dtds.Hospital()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	e := nurseEngine(t, "6")

	nodes, err := e.QueryString(doc, "//patient/name")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	var names []string
	for _, n := range nodes {
		names = append(names, n.Text())
	}
	if len(names) != 2 || names[0] != "Carol" || names[1] != "Alice" {
		t.Errorf("nurse sees %v, want [Carol Alice]", names)
	}

	// Hidden labels are unreachable.
	nodes, err = e.QueryString(doc, "//clinicalTrial | //trial | //regular")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	if len(nodes) != 0 {
		t.Errorf("hidden labels returned %d nodes", len(nodes))
	}

	// The view DTD exposes dummies, never the hidden names.
	viewStr := e.ViewDTD().String()
	for _, hidden := range []string{"clinicalTrial", "trial", "regular"} {
		if strings.Contains(viewStr, hidden) {
			t.Errorf("view DTD leaks %q:\n%s", hidden, viewStr)
		}
	}
	if !strings.Contains(viewStr, "dummy1") {
		t.Errorf("view DTD missing dummy labels:\n%s", viewStr)
	}

	if err := e.Audit(doc); err != nil {
		t.Errorf("Audit: %v", err)
	}
}

func TestEngineRejectsUnboundSpec(t *testing.T) {
	if _, err := NewEngine(dtds.NurseSpec()); err == nil {
		t.Errorf("unbound spec accepted")
	}
}

func TestEngineMaterialize(t *testing.T) {
	doc, _ := ParseDocumentString(paperDoc)
	e := nurseEngine(t, "7")
	m, err := e.Materialize(doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if err := Validate(m.View, e.ViewDTD()); err != nil {
		t.Errorf("materialized view invalid: %v", err)
	}
	nodes := Eval(mustParse(t, "//patient/name"), m.View)
	if len(nodes) != 1 || nodes[0].Text() != "Bob" {
		t.Errorf("ward-7 view patients wrong")
	}
}

func TestEngineRecursiveView(t *testing.T) {
	e, err := NewEngine(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if !e.View().IsRecursive() {
		t.Fatalf("Fig7 view not recursive")
	}
	doc, err := ParseDocumentString(`<a><b>1</b><c><a><b>2</b><c/></a></c></a>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nodes, err := e.QueryString(doc, "//b")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	if len(nodes) != 2 {
		t.Errorf("//b over recursive view returned %d nodes, want 2", len(nodes))
	}
}

func TestFacadeParsers(t *testing.T) {
	if _, err := ParseDTD("root a\na -> #PCDATA\n"); err != nil {
		t.Errorf("ParseDTD: %v", err)
	}
	if _, err := ParseElementDTD("<!ELEMENT a (#PCDATA)>"); err != nil {
		t.Errorf("ParseElementDTD: %v", err)
	}
	d, _ := ParseDTD("root a\na -> b\nb -> #PCDATA\n")
	if _, err := ParseSpec(d, "ann(a, b) = N\n"); err != nil {
		t.Errorf("ParseSpec: %v", err)
	}
	p, err := ParseQuery("//a[b = \"1\"]")
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if QueryString(p) == "" {
		t.Errorf("QueryString empty")
	}
}

func mustParse(t *testing.T, q string) Path {
	t.Helper()
	p, err := ParseQuery(q)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", q, err)
	}
	return p
}
