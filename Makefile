# Developer targets. `make check` is the tier-1 verification extension
# recorded in ROADMAP.md: build, vet, and the full test suite under the
# race detector (the concurrent query-serving layer must stay race-free).

GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 100x .

# bench-smoke runs the serving-relevant benchmarks once each — no
# timings asserted, just "they still build, run, and agree" (the
# indexed benchmarks cross-check their evaluators' result counts).
# -benchmem is on so a single run already shows allocs/op: the ordinal
# bitset path is an allocation-budget feature, and its regressions are
# visible in allocs/op long before they show up in wall time. CI runs
# this so a refactor cannot silently break the benchmark harness
# between loadbench refreshes.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkPlanCache|BenchmarkDeepDescendant|BenchmarkHeightSweep' -benchmem -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkRecEval' -benchmem -benchtime 1x ./internal/xpath

# loadsmoke drives the in-process hospital server through a short ramp
# and fails (exit 2) if overload is reached without the admitted-latency
# bound holding. CI runs this; `make loadbench` is the longer run that
# regenerates the committed BENCH_svload.json.
.PHONY: loadsmoke loadbench
loadsmoke:
	$(GO) run ./cmd/svload -builtin hospital -levels 4,16,64 -duration 500ms \
		-timeout 250ms -max-inflight 8 -out /dev/null

loadbench:
	$(GO) run ./cmd/svload -builtin hospital -levels 4,16,64 -duration 2s \
		-timeout 250ms -max-inflight 16 -out BENCH_svload.json

# netsmoke drives a real svserve over TCP (ReadHeaderTimeout, graceful
# drain, /explainz on a recursive query, /metricsz validated by
# promcheck); `make profile` captures a CPU profile from a loaded
# server into profile.cpu.pprof.
.PHONY: netsmoke profile
netsmoke:
	bash scripts/netsmoke.sh

profile:
	bash scripts/profile.sh

# fuzz-smoke gives every fuzz target a short budget (go test accepts one
# -fuzz pattern per invocation, hence the one-target-per-line shape).
# CI runs this; locally, raise FUZZTIME for a deeper pass.
FUZZTIME ?= 20s

.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test ./internal/xpath -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xpath -fuzz 'FuzzParseQual$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xpath -fuzz 'FuzzEval$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xpath -fuzz 'FuzzEvalQual$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dtd -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dtd -fuzz 'FuzzParseElementSyntax$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dtd -fuzz 'FuzzMatchLabels$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rewrite -fuzz 'FuzzRewriteRecursive$$' -fuzztime $(FUZZTIME)
