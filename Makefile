# Developer targets. `make check` is the tier-1 verification extension
# recorded in ROADMAP.md: build, vet, and the full test suite under the
# race detector (the concurrent query-serving layer must stay race-free).

GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 100x .
